// Command ktrace boots the simulated system with the kernel event ring
// enabled, runs a representative share-group workload (creation, shared
// faults, attribute propagation, a region shrink with its shootdown, a
// signal), and prints the trace — the observability view of the mechanisms
// the paper describes.
package main

import (
	"fmt"

	irix "repro"
	"repro/internal/faultinject"
	"repro/internal/kernel"
	"repro/internal/trace"
)

func main() {
	sys := irix.New(irix.Config{NCPU: 4, TraceEvents: 4096})

	sys.Start("traced", func(c *irix.Ctx) {
		shm, _ := c.Mmap(4)
		done := irix.Word{VA: shm + 8}
		// Two members: one faults pages in, one updates shared attributes.
		c.Sproc("faulter", func(w *irix.Ctx, _ int64) {
			for i := 0; i < 3; i++ {
				w.Store32(shm+irix.VAddr(i*irix.PageSize), 1)
			}
			done.Add(w, 1)
		}, irix.PRSALL, 0)
		c.Sproc("updater", func(w *irix.Ctx, _ int64) {
			w.Umask(0o027)
			done.Add(w, 1)
		}, irix.PRSALL, 0)
		// Typed resource control: the setshares/getusage spans below render
		// symbolically in the trace like every other descriptor-table call.
		c.Setshares(irix.Entitlement{CPUShares: 4, FrameQuota: -1, MemberCap: -1})
		c.Getusage()
		done.AwaitEq(c, 2)
		c.Getpid() // reconcile the umask update (EvSync)
		// A live checkpoint: one EvCkptPass span per pre-copy pass, then
		// the EvCkptSTW event closing the stop-the-world window.
		c.Ckpt(kernel.CkptOpts{Passes: 1})
		c.Wait()
		c.Wait()

		// A shrink: update lock + machine-wide shootdown.
		c.Sbrk(irix.PageSize)
		c.Sbrk(-irix.PageSize)

		// A signal to a forked child.
		pid, _ := c.Fork("victim", func(w *irix.Ctx) { w.Pause() })
		c.Kill(pid, irix.SIGTERM)
		c.Wait()

		// A lazy COW break: fork duplicates the dirty data page O(1), and
		// the child's first write materializes it (EvLazyBreak).
		c.Store32(irix.DataBase, 7)
		c.Fork("toucher", func(w *irix.Ctx) { w.Store32(irix.DataBase, 8) })
		c.Wait()
	})
	sys.WaitIdle()

	events, dropped := sys.Machine.Trace.Snapshot()
	fmt.Printf("kernel trace: %d events (%d dropped)\n", len(events), dropped)
	for _, e := range events {
		// Syscall spans carry the syscall number (and, on exit, the errno);
		// render them symbolically instead of as raw payload words.
		switch e.Kind {
		case trace.EvSyscallEnter:
			fmt.Printf("  #%d %-9s pid=%-3d cpu=%-2d %s\n",
				e.Seq, e.Kind, e.PID, e.CPU, kernel.SysName(kernel.Sysno(e.Arg)))
		case trace.EvSyscallExit:
			fmt.Printf("  #%d %-9s pid=%-3d cpu=%-2d %s = %s\n",
				e.Seq, e.Kind, e.PID, e.CPU, kernel.SysName(kernel.Sysno(e.Arg)), kernel.Errno(e.Aux))
		case trace.EvFaultInject:
			fmt.Printf("  #%d %-9s key=%-3d %s\n", e.Seq, e.Kind, e.Arg, faultName(e.Aux))
		case trace.EvCkptPass:
			fmt.Printf("  #%d %-9s pid=%-3d cpu=%-2d pass=%d pages=%d\n",
				e.Seq, e.Kind, e.PID, e.CPU, e.Aux, e.Arg)
		case trace.EvCkptSTW:
			fmt.Printf("  #%d %-9s pid=%-3d cpu=%-2d stw-pages=%d frozen=%d\n",
				e.Seq, e.Kind, e.PID, e.CPU, e.Arg, e.Aux)
		case trace.EvRestore:
			fmt.Printf("  #%d %-9s pid=%-3d cpu=%-2d respawned=%d\n",
				e.Seq, e.Kind, e.PID, e.CPU, e.Arg)
		default:
			fmt.Println(" ", e)
		}
	}
	fmt.Println("\nsummary:")
	for _, k := range []trace.Kind{
		trace.EvCreate, trace.EvExit, trace.EvDispatch, trace.EvPreempt,
		trace.EvFault, trace.EvShootdown, trace.EvSignal, trace.EvSync,
		trace.EvSyscallEnter, trace.EvSyscallExit, trace.EvFaultInject,
		trace.EvLazyBreak, trace.EvCkptPass, trace.EvCkptSTW, trace.EvRestore,
	} {
		fmt.Printf("  %-10s %d\n", k, sys.Machine.Trace.CountKind(k))
	}

	fmt.Println("\nper-CPU ring shards (drops to wrap-around):")
	drops := sys.Machine.Trace.DropsByCPU()
	for i, d := range drops {
		label := fmt.Sprintf("cpu%d", i)
		if i == len(drops)-1 {
			label = "overflow" // events recorded without a CPU context
		}
		fmt.Printf("  %-10s %d dropped\n", label, d)
	}
	st := sys.Stats()
	fmt.Printf("\nscheduler: dispatches=%d local=%d steals=%d preemptions=%d\n",
		st.Dispatches, st.LocalPicks, st.Steals, st.Preemptions)
	fmt.Printf("frames:    allocs=%d frees=%d cache-hits=%d refills=%d drains=%d\n",
		st.FrameAllocs, st.FrameFrees, st.CacheHits, st.CacheRefills, st.CacheDrains)

	faultDemo()
}

// faultName decodes the site<<8|fault Aux word of an EvFaultInject event.
func faultName(aux uint32) string {
	return fmt.Sprintf("%s/%s", faultinject.Site(aux>>8), faultinject.Fault(aux&0xff))
}

// faultDemo reruns a blocking-heavy workload with a fault plan armed, so
// the trace shows injected faults and the restarts they force. The frame
// allocator site stays disarmed: a frame ENOMEM is a process-killing
// SIGSEGV, and this demo's point is the *survivable* degradation paths.
func faultDemo() {
	sys := irix.New(irix.Config{NCPU: 4, TraceEvents: 4096, FaultSeed: 2026, FaultRate: 200})
	sys.FaultPlan().SetRate(faultinject.SiteFrameAlloc, 0)

	sys.Start("chaotic", func(c *irix.Ctx) {
		c.Signal(irix.SIGUSR1, func(int) {})
		rfd, wfd, _ := c.Pipe()
		id := c.Semget(1, 1)
		for i := 0; i < 12; i++ {
			// A sleeping poll(2) released by a forked writer: the pollsleep
			// site injects spurious wakeups into the wait, and an injected
			// EINTR at the gateway is poll's contract, so retry it.
			c.Fork("writer", func(k *irix.Ctx) {
				for j := 0; j < 100; j++ {
					k.Getpid()
				}
				k.WriteString(wfd, irix.DataBase, "x")
			})
			set := []irix.PollFd{{Fd: rfd, Events: irix.PollIn}}
			for {
				if _, err := c.Poll(set, -1); err == nil || irix.ErrnoOf(err) != irix.EINTR {
					break
				}
			}
			c.ReadString(rfd, irix.DataBase+64, 1)
			for {
				if _, _, err := c.Wait(); err == nil || irix.ErrnoOf(err) != irix.EINTR {
					break
				}
			}

			c.WriteString(wfd, irix.DataBase, "payload")
			c.ReadString(rfd, irix.DataBase+64, 7)
			c.Semop(id, 0, 1)
			c.Semop(id, 0, -1)
			pid, err := c.Fork("kid", func(k *irix.Ctx) { k.Getpid() })
			if err != nil {
				continue // injected EAGAIN survived the retry budget
			}
			c.Kill(pid, irix.SIGUSR1)
			for {
				if _, _, err := c.Wait(); err == nil || irix.ErrnoOf(err) != irix.EINTR {
					break
				}
			}
		}
	})
	sys.WaitIdle()

	fmt.Printf("\nfault-injection demo (seed=%d, rate=200‰, framealloc disarmed):\n", 2026)
	events, _ := sys.Machine.Trace.Snapshot()
	shown := 0
	for _, e := range events {
		if e.Kind == trace.EvFaultInject && shown < 12 {
			shown++
			fmt.Printf("  #%-5d %-9s key=%-3d %s\n", e.Seq, e.Kind, e.Arg, faultName(e.Aux))
		}
	}
	st := sys.Stats()
	fmt.Printf("faults:    checks=%d injected=%d restarts=%d retries=%d\n",
		st.FaultChecks, st.FaultsInjected, st.SyscallRestarts, st.SyscallRetries)
	fmt.Printf("readiness: poll-sleeps=%d transitions=%d sleeper-wakes=%d poller-wakes=%d\n",
		st.PollSleeps, st.ReadyTransitions, st.ReadySleeperWakes, st.ReadyPollerWakes)
	for _, row := range st.FaultSites {
		if row.Checks > 0 {
			fmt.Printf("  site %-10s checks=%-6d injected=%d\n", row.Site, row.Checks, row.Injected)
		}
	}
}
