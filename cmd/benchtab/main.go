// Command benchtab regenerates the paper's evaluation tables (DESIGN.md
// E1..E10, recorded in EXPERIMENTS.md) by running the workload drivers at
// fixed parameters and printing one table per experiment. Pass -quick for
// a fast smoke run with smaller parameters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/vm"
	"repro/internal/workload"
)

var (
	quick   = flag.Bool("quick", false, "smaller parameters for a fast run")
	jsonOut = flag.Bool("json", false, "also write BENCH_<runstamp>.json with per-row numbers")
	work    = flag.String("work", "", "run only the named experiment (e1c, prefork, serve, creation, vm, syscall, ipc, sync, pool, sched, numa, fairshare, ckpt, ablations); empty = all")
)

func cfg() kernel.Config { return workload.DefaultConfig() }

func n(full, small int) int {
	if *quick {
		return small
	}
	return full
}

// benchResult is one table row in machine-readable form; -json collects
// every row and writes the set as a snapshot keyed by the run timestamp.
type benchResult struct {
	Experiment     string  `json:"experiment"`
	Name           string  `json:"name"`
	SimCyclesPerOp float64 `json:"simcyc_per_op"`
	NsPerOp        float64 `json:"ns_per_op"`
	WallNs         int64   `json:"wall_ns"`
	Ops            int64   `json:"ops"`
	Shootdowns     int64   `json:"shootdowns"`
	Faults         int64   `json:"faults"`

	// S7 serving rows only.
	P50Simcyc int64 `json:"p50_simcyc,omitempty"`
	P99Simcyc int64 `json:"p99_simcyc,omitempty"`

	// S8 fair-share rows only.
	ShareErr      float64 `json:"share_err,omitempty"`
	QuotaReclaims int64   `json:"quota_reclaims,omitempty"`

	// S10 checkpoint rows only.
	STWPages   int64 `json:"stw_pages,omitempty"`
	STWSimcyc  int64 `json:"stw_simcyc,omitempty"`
	PrePages   int64 `json:"pre_pages,omitempty"`
	ImageBytes int64 `json:"image_bytes,omitempty"`
}

var (
	curExperiment string
	results       []benchResult
)

func table(title string, cols string) {
	curExperiment = title
	fmt.Printf("\n%s\n", title)
	for range title {
		fmt.Print("─")
	}
	fmt.Printf("\n%s\n", cols)
}

func row(name string, m workload.Metrics, extra string) {
	fmt.Printf("  %-22s %10.0f %12v %8d %8d%s\n",
		name, m.CyclesPerOp(), m.Wall.Round(time.Microsecond), m.Shootdowns, m.Faults, extra)
	nsPerOp := 0.0
	if m.Ops > 0 {
		nsPerOp = float64(m.Wall.Nanoseconds()) / float64(m.Ops)
	}
	results = append(results, benchResult{
		Experiment:     curExperiment,
		Name:           name,
		SimCyclesPerOp: m.CyclesPerOp(),
		NsPerOp:        nsPerOp,
		WallNs:         m.Wall.Nanoseconds(),
		Ops:            m.Ops,
		Shootdowns:     m.Shootdowns,
		Faults:         m.Faults,
	})
}

func writeJSON() error {
	stamp := time.Now().UTC().Format("20060102T150405")
	path := fmt.Sprintf("BENCH_%s.json", stamp)
	snap := struct {
		Runstamp string        `json:"runstamp"`
		Quick    bool          `json:"quick"`
		Results  []benchResult `json:"results"`
	}{Runstamp: stamp, Quick: *quick, Results: results}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d rows)\n", path, len(results))
	return nil
}

// experiments maps -work names to experiment groups; the zero name runs
// everything in the canonical order.
var experiments = []struct {
	name string
	run  func()
}{
	{"creation", func() { e1e4(); e1c() }},
	{"e1c", e1c},
	{"prefork", prefork},
	{"vm", func() { e2(); e8() }},
	{"syscall", func() { e3(); s2() }},
	{"ipc", e5},
	{"sync", func() { e6(); s5() }},
	{"pool", e7},
	{"sched", func() { e10(); scaling(); s4() }},
	{"numa", s6},
	{"serve", s7},
	{"fairshare", s8},
	{"ckpt", s10},
	{"ablations", ablations},
}

func main() {
	flag.Parse()
	fmt.Println("share groups reproduction — experiment tables (simulated MIPS R2000 multiprocessor, 4 CPUs)")

	if *work != "" {
		for _, e := range experiments {
			if e.name == *work {
				e.run()
				if *jsonOut {
					if err := writeJSON(); err != nil {
						fmt.Fprintln(os.Stderr, "benchtab:", err)
						os.Exit(1)
					}
				}
				return
			}
		}
		fmt.Fprintf(os.Stderr, "benchtab: unknown -work %q\n", *work)
		os.Exit(2)
	}

	e1e4()
	e1c()
	prefork()
	e2()
	e3()
	s2()
	e8()
	e5()
	e6()
	e7()
	e10()
	s5()
	scaling()
	s4()
	s6()
	s7()
	s8()
	s10()
	ablations()

	if *jsonOut {
		if err := writeJSON(); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
	}
}

// scaling — MP hot-path scaling of the de-serialized substrate: each storm
// hammers one machine-wide structure (frame allocator, creation path, trace
// ring, dispatcher) with the total operation count fixed and split across
// NCPU, so flat-or-falling simcyc/op as CPUs grow is the per-CPU sharding
// paying off.
func scaling() {
	ops := n(4096, 512)
	table("S1 — MP hot-path scaling (fixed total work split across 1..8 CPUs)",
		"  storm/ncpu               simcyc/op         wall  shootdn   faults")
	for _, ncpu := range []int{1, 2, 4, 8} {
		c := cfg()
		c.NCPU = ncpu
		row(fmt.Sprintf("fault-storm, ncpu=%d", ncpu),
			workload.FaultStorm(c, ncpu, ops/ncpu), "")
	}
	creations := n(512, 64)
	for _, ncpu := range []int{1, 2, 4, 8} {
		c := cfg()
		c.NCPU = ncpu
		row(fmt.Sprintf("create-storm, ncpu=%d", ncpu),
			workload.CreateStorm(c, ncpu, creations/ncpu), "")
	}
	events := n(1<<16, 1<<13)
	for _, ncpu := range []int{1, 2, 4, 8} {
		c := cfg()
		c.NCPU = ncpu
		c.TraceEvents = 4096
		row(fmt.Sprintf("trace-storm, ncpu=%d", ncpu),
			workload.TraceStorm(c, ncpu, events/ncpu), "")
	}
	yields := n(8192, 1024)
	for _, ncpu := range []int{1, 2, 4, 8} {
		c := cfg()
		c.NCPU = ncpu
		procs := 2 * ncpu
		row(fmt.Sprintf("dispatch-storm, ncpu=%d", ncpu),
			workload.DispatchStorm(c, procs, yields/procs), "")
	}
	fmt.Println("  shape: simcyc/op flat or falling as NCPU grows — per-CPU frame caches,")
	fmt.Println("  trace shards, and run queues keep the hot paths off the global locks")
}

// s4 — resident-fault scaling: share-group members re-faulting pages that
// are already resident (TLB misses into the fault handler, no allocation).
// The total touch count is fixed and split across NCPU members, so
// simcyc/op flat-or-falling as CPUs grow means the resident-fault path is
// actually concurrent; rising means it is serializing on a lock.
func s4() {
	touches := n(16384, 2048)
	table("S4 — resident-fault storm (fixed total touches split across 1..8 members/CPUs)",
		"  members/ncpu             simcyc/op         wall  shootdn   faults")
	for _, ncpu := range []int{1, 2, 4, 8} {
		c := cfg()
		c.NCPU = ncpu
		m := workload.ResidentFaultStorm(c, ncpu, touches/ncpu)
		row(fmt.Sprintf("resident-fault, ncpu=%d", ncpu), m,
			fmt.Sprintf("  fast-fills=%d slow=%d cache-hits=%d sleeps=%d", m.FastFills, m.SlowFills, m.CacheHits, m.LockSleeps))
	}
	fmt.Println("  shape: simcyc/op flat as NCPU grows — the resident fault takes no lock at all;")
	fmt.Println("  the pregion cache skips the list scan and the PTE read is one atomic load")
}

// s6 — NUMA locality domains at scale: the S1 fault storm and an S4-style
// private re-fault storm re-run at 8/64/256 CPUs with the machine split
// into nodes of 8 CPUs each (nodes = ncpu/8), weak scaling — per-worker
// work held constant so per-op cost should stay flat as the machine grows.
// Each topology runs twice on the same machine shape: node-blind
// (round-robin frame placement, the old single-pool behaviour) versus
// locality-aware (home-node pool first, nearest-first fallback). The
// per-hop RemoteAccess penalty is charged in both, so the gap is pure
// placement quality. Then the pregion interval index microbenchmark:
// ordered binary-search lookup versus the linear scan it replaced, at
// 1k/10k/100k attached regions.
func s6() {
	numaCfg := func(ncpu int, blind bool) kernel.Config {
		c := cfg()
		c.NCPU = ncpu
		c.NUMANodes = ncpu / 8
		c.NodeBlindAlloc = blind
		c.MaxProcs = 2 * ncpu
		if ncpu > 8 {
			c.MemFrames = 65536
		}
		return c
	}
	pol := func(blind bool) string {
		if blind {
			return "node-blind"
		}
		return "locality"
	}
	pagesEach := n(64, 16)
	table("S6a — NUMA fault storm (nodes = ncpu/8, constant per-worker work, 1 worker/CPU)",
		"  storm/policy             simcyc/op         wall  shootdn   faults")
	for _, ncpu := range []int{8, 64, 256} {
		for _, blind := range []bool{true, false} {
			row(fmt.Sprintf("fault ncpu=%d %s", ncpu, pol(blind)),
				workload.FaultStorm(numaCfg(ncpu, blind), ncpu, pagesEach), "")
		}
	}
	fmt.Println("  shape: locality stays below node-blind at every multi-node point and the gap")
	fmt.Println("  widens with the node count; the common rise is the munmap shootdown, whose")
	fmt.Println("  IPI fan-out is machine-wide by design (see DefaultPageShootdownMax)")
	touchesEach := n(1024, 256)
	table("S6b — NUMA private re-fault storm (single-owner resident pages, 1 worker/CPU)",
		"  storm/policy             simcyc/op         wall  shootdn   faults")
	for _, ncpu := range []int{8, 64, 256} {
		for _, blind := range []bool{true, false} {
			m := workload.PrivateRefaultStorm(numaCfg(ncpu, blind), ncpu, touchesEach)
			row(fmt.Sprintf("refault ncpu=%d %s", ncpu, pol(blind)), m,
				fmt.Sprintf("  fast-fills=%d", m.FastFills))
		}
	}
	fmt.Println("  shape: locality-aware rows near-flat as the machine grows while node-blind")
	fmt.Println("  rows degrade — home-node frame pools keep the RemoteAccess penalty off the")
	fmt.Println("  re-fault path; at ncpu=8 there is one node, so the two policies coincide")

	s6pregion()
}

// linearFind is the pre-index pregion lookup: walk the whole list. It lives
// here (not in internal/vm) purely as the measured baseline.
func linearFind(list []*vm.PRegion, va hw.VAddr) *vm.PRegion {
	for _, pr := range list {
		if pr.Contains(va) {
			return pr
		}
	}
	return nil
}

func s6pregion() {
	table("S6c — pregion lookup: ordered interval index vs linear scan (host ns/lookup)",
		"  regions                  linear-ns     index-ns    speedup")
	lookups := n(200_000, 20_000)
	for _, nreg := range []int{1_000, 10_000, 100_000} {
		mem := hw.NewMemory(64)
		list := make([]*vm.PRegion, 0, nreg)
		for i := 0; i < nreg; i++ {
			// Two-page spacing leaves a hole after every region so misses
			// are exercised too.
			base := hw.VAddr(uint32(i) * 2 * hw.PageSize)
			list = vm.Insert(list, &vm.PRegion{Reg: vm.NewRegion(mem, vm.RData, 1), Base: base})
		}
		span := uint32(nreg) * 2 * hw.PageSize
		probe := func(find func([]*vm.PRegion, hw.VAddr) *vm.PRegion) float64 {
			va := hw.VAddr(0)
			t0 := time.Now()
			for i := 0; i < lookups; i++ {
				find(list, va)
				// Coprime stride walks the whole span, hits and holes alike.
				va = hw.VAddr((uint32(va) + 9973*hw.PageSize) % span)
			}
			return float64(time.Since(t0).Nanoseconds()) / float64(lookups)
		}
		linNs := probe(linearFind)
		idxNs := probe(vm.Find)
		fmt.Printf("  %-22d %11.1f %12.1f %9.1fx\n", nreg, linNs, idxNs, linNs/idxNs)
		results = append(results, benchResult{
			Experiment: curExperiment,
			Name:       fmt.Sprintf("index lookup, %d regions", nreg),
			NsPerOp:    idxNs,
			Ops:        int64(lookups),
		})
		results = append(results, benchResult{
			Experiment: curExperiment,
			Name:       fmt.Sprintf("linear lookup, %d regions", nreg),
			NsPerOp:    linNs,
			Ops:        int64(lookups),
		})
	}
	fmt.Println("  shape: index ns/lookup near-flat in the region count (log n); the linear")
	fmt.Println("  scan grows ~100x from 1k to 100k regions")
}

// rowServe is row() for S7 serving runs: the extra column is the
// request→response latency distribution in simulated cycles, plus the
// readiness-layer counters behind it.
func rowServe(name string, m workload.ServeMetrics) {
	row(name, m.Metrics, fmt.Sprintf("  p50=%d p99=%d poll-sleeps=%d transitions=%d",
		m.P50, m.P99, m.PollSleeps, m.Transitions))
	results[len(results)-1].P50Simcyc = m.P50
	results[len(results)-1].P99Simcyc = m.P99
}

// s7 — the C10k serving experiment (EXPERIMENTS S7): how many share-group
// members does it take to hold N concurrent client connections open and
// answer them all? The poll-driven organization multiplexes the whole load
// through a fixed small pool whose size is independent of the connection
// count; the blocking organization holds one member *per connection* by
// construction, so its member count is its connection count and the 10k
// load would need a 10000-member group.
func s7() {
	conns := n(10000, 1000)
	table(fmt.Sprintf("S7 — C10k serving: %d concurrent connections, poll pool vs blocking thread-per-connection", conns),
		"  organization             simcyc/op         wall  shootdn   faults")
	for _, members := range []int{2, 4, 8} {
		m := workload.Serve(cfg(), workload.ServePoll,
			workload.ServeConfig{Conns: conns, Members: members, Clients: 4})
		rowServe(fmt.Sprintf("poll, %d members", members), m)
	}
	c8 := cfg()
	c8.NCPU = 8
	m := workload.Serve(c8, workload.ServePoll,
		workload.ServeConfig{Conns: conns, Members: 8, Clients: 4})
	rowServe("poll, 8 members/8cpu", m)

	bconns := n(512, 128)
	m = workload.Serve(cfg(), workload.ServeBlocking,
		workload.ServeConfig{Conns: bconns, Members: bconns, Clients: 4})
	rowServe(fmt.Sprintf("blocking, %d members", bconns), m)
	fmt.Printf("  shape: an 8-member group answers all %d connections through poll(2); the\n", conns)
	fmt.Printf("  blocking organization needs members = connections (%d here) just to hold\n", bconns)
	fmt.Println("  them open, so member count scales with load instead of staying fixed")
}

// fracs renders delivered/entitled fractions as percentages.
func fracs(fs []float64) string {
	out := ""
	for i, f := range fs {
		if i > 0 {
			out += "/"
		}
		out += fmt.Sprintf("%.1f%%", 100*f)
	}
	return out
}

// s8 — fair-share scheduling and group resource limits (DESIGN.md §15):
// three share groups with CPU entitlements 4:2:1 on a 3x-overcommitted
// machine, against the share-blind dispatcher as baseline; then the frame
// quota leg, a group streaming pages far above its cap, degrading through
// its own zero-page reclaim instead of dying with ENOMEM.
func s8() {
	c := cfg()
	horizon := int64(n(6_000_000, 1_500_000))
	fc := workload.FairShareConfig{Shares: []int32{4, 2, 1}, Members: c.NCPU, Horizon: horizon}
	table("S8 — fair-share delivery under 3x overcommit (3 groups, shares 4:2:1, 4 burners each)",
		"  run                      simcyc/op         wall  shootdn   faults")

	fc.Fair = false
	blind := workload.FairShare(c, fc)
	row("share-blind", blind.Metrics,
		fmt.Sprintf("  delivered=%s err=%.3f", fracs(blind.DeliveredFrac()), blind.MaxShareError()))
	results[len(results)-1].ShareErr = blind.MaxShareError()

	fc.Fair = true
	fair := workload.FairShare(c, fc)
	row("fair 4:2:1", fair.Metrics,
		fmt.Sprintf("  delivered=%s err=%.3f", fracs(fair.DeliveredFrac()), fair.MaxShareError()))
	results[len(results)-1].ShareErr = fair.MaxShareError()
	ent := fair.EntitledFrac()
	del := fair.DeliveredFrac()
	for g, u := range fair.Usage {
		fmt.Printf("    group %d: shares=%d entitled=%5.1f%% delivered=%5.1f%% band=%d ops=%d\n",
			g, u.CPUShares, 100*ent[g], 100*del[g], u.Band, fair.GroupOps[g])
	}
	fmt.Printf("  aggregate: fair=%d ops vs blind=%d ops (ratio %.3f)\n",
		fair.Ops, blind.Ops, float64(fair.Ops)/float64(blind.Ops))

	qm := workload.FairShare(c, workload.FairShareConfig{
		Shares: []int32{2, 1}, Members: 2, Horizon: horizon / 3,
		Fair: true, QuotaGroup: 1, QuotaFrames: 32, QuotaPages: 96,
	})
	u := qm.Usage[1]
	row("frame-quota group", qm.Metrics,
		fmt.Sprintf("  used=%d/%d hits=%d reclaims=%d rezeroed=%d", u.FramesUsed, u.FrameQuota, u.QuotaHits, u.QuotaReclaims, u.ReclaimedZeros))
	results[len(results)-1].QuotaReclaims = u.QuotaReclaims
	fmt.Println("  shape: delivered CPU tracks the 4:2:1 entitlement within a few points while")
	fmt.Println("  aggregate throughput matches the share-blind run; the quota-capped group")
	fmt.Println("  stays at its cap by reclaiming its own zero pages — degradation, not ENOMEM")
}

// s10 — live checkpoint (DESIGN.md §17): checkpoint a churning group once
// per row, varying the pre-copy pass budget. The image is the same size
// every time; what moves is where the copying happens — inside the
// stop-the-world window with no passes, overlapped with execution as
// passes are added — so the stopped delta shrinks monotonically toward
// zero while the live page count grows by the re-dirtied tail.
func s10() {
	members := 4
	pagesEach := n(64, 16)
	table(fmt.Sprintf("S10 — checkpoint STW delta vs pre-copy passes (%d dirtiers, %d-page set, decaying churn)",
		members, members*pagesEach),
		"  run                      stw-pages   stw-simcyc    pre-pages    image-KB")
	for _, p := range []int{0, 1, 2, 4, 8} {
		info, err := workload.CkptPrecopy(cfg(), members, pagesEach, p)
		if err != nil {
			fmt.Printf("  passes=%-2d  error: %v\n", p, err)
			continue
		}
		name := fmt.Sprintf("passes=%d", p)
		if info.Passes != p {
			name = fmt.Sprintf("passes=%d (ran %d)", p, info.Passes)
		}
		fmt.Printf("  %-22s %10d %12d %12d %11d\n",
			name, info.STWPages, info.STWCycles, info.PrePages, info.ImageBytes/1024)
		results = append(results, benchResult{
			Experiment: curExperiment,
			Name:       name,
			Ops:        int64(info.PrePages + info.STWPages),
			STWPages:   int64(info.STWPages),
			STWSimcyc:  info.STWCycles,
			PrePages:   int64(info.PrePages),
			ImageBytes: int64(info.ImageBytes),
		})
	}
	fmt.Println("  shape: the naive snapshot pays the whole resident set inside the window; each")
	fmt.Println("  pre-copy pass moves the earlier (larger) share of the copying into live")
	fmt.Println("  execution, leaving only the still-cooling dirty tail for the stop")
}

// ablations — DESIGN.md §6: the rejected designs, measured.
func ablations() {
	pages := n(512, 64)
	table("A1 — shared read lock vs exclusive lock on the pregion list (4 faulting members)",
		"  variant                  simcyc/op         wall  shootdn   faults")
	m := workload.FaultScaling(cfg(), 4, pages/4)
	row("shared read lock", m, fmt.Sprintf("  lock: %d concurrent scans, %d exclusive, %d sleeps", m.RLocks, m.WLocks, m.LockSleeps))
	exc := cfg()
	exc.ExclusiveVMLock = true
	m = workload.FaultScaling(exc, 4, pages/4)
	row("exclusive lock", m, fmt.Sprintf("  lock: %d concurrent scans, %d exclusive, %d sleeps", m.RLocks, m.WLocks, m.LockSleeps))
	fmt.Println("  shape: the shared lock admits every fault concurrently; the exclusive variant")
	fmt.Println("  serializes all of them (every scan is an exclusive acquisition)")

	rt := n(300, 30)
	table("A2 — deferred vs eager attribute synchronization (4 members)",
		"  variant                  simcyc/op         wall  shootdn   faults")
	m = workload.AttrSync(cfg(), 4, rt)
	row("deferred (p_flag bits)", m, fmt.Sprintf("  updater-cyc/op=%.0f syncs=%d", m.UpdaterPerOp(), m.Syncs))
	eg := cfg()
	eg.EagerAttrSync = true
	m = workload.AttrSync(eg, 4, rt)
	row("eager push", m, fmt.Sprintf("  updater-cyc/op=%.0f syncs=%d", m.UpdaterPerOp(), m.Syncs))
	fmt.Println("  shape: eager pushing moves the whole propagation onto the updater's critical")
	fmt.Println("  path; the deferred design leaves the updater with a near-constant cost")
}

// E1/E4 — creation cost.
func e1e4() {
	iters := n(400, 50)
	table("E1/E4 — process creation (create+join, 32 dirty pages)",
		"  primitive                simcyc/op         wall  shootdn   faults")
	for _, kind := range []workload.CreateKind{
		workload.CreateFork, workload.CreateSprocNVM,
		workload.CreateSproc, workload.CreateThread,
	} {
		row(string(kind), workload.Creation(cfg(), kind, 32, iters), "")
	}
	fmt.Println("  paper: sproc() slightly cheaper than fork() (§7); Mach threads ~10x fork's rate (§3)")

	table("E1b — fork vs sproc vs image size (the gap scales with what fork must copy)",
		"  image                    simcyc/op         wall  shootdn   faults")
	for _, dp := range []int{16, 64, 256} {
		c := cfg()
		c.DataPages = dp
		f := workload.Creation(c, workload.CreateFork, 0, iters/2)
		sp := workload.Creation(c, workload.CreateSproc, 0, iters/2)
		row(fmt.Sprintf("fork,  data=%dp", dp), f, "")
		row(fmt.Sprintf("sproc, data=%dp", dp), sp,
			fmt.Sprintf("  fork/sproc=%.2f", f.CyclesPerOp()/sp.CyclesPerOp()))
	}
}

// e1c — O(1) member creation (DESIGN.md §16): fork cost versus image size,
// lazy duplication against the eager spawn-time walk it replaced
// (Config.EagerDup). The children never touch their image, so the lazy
// rows charge only the per-region clone — flat in the page count — while
// the eager rows walk every slot at spawn and grow linearly.
func e1c() {
	iters := n(200, 30)
	table("E1c — lazy vs eager fork across image size (create+join, untouched children)",
		"  image                    simcyc/op         wall  shootdn   faults")
	for _, dp := range []int{4, 64, 1024, 4096} {
		c := cfg()
		c.DataPages = dp
		lz := workload.Creation(c, workload.CreateFork, dp, iters)
		c.EagerDup = true
		eg := workload.Creation(c, workload.CreateFork, dp, iters)
		row(fmt.Sprintf("lazy,  data=%dp", dp), lz, "")
		row(fmt.Sprintf("eager, data=%dp", dp), eg,
			fmt.Sprintf("  eager/lazy=%.2f", eg.CyclesPerOp()/lz.CyclesPerOp()))
	}
	fmt.Println("  shape: lazy simcyc/op flat from 4p to 4096p (the clone copies region headers,")
	fmt.Println("  not page tables); eager grows linearly with the image and the untouched child")
	fmt.Println("  paid for a walk it never used")
}

// rowPrefork is row() for prefork pool runs: latency distribution plus the
// lazy-creation counters the churn exercises.
func rowPrefork(name string, m workload.PreforkMetrics) {
	row(name, m.Metrics, fmt.Sprintf("  p50=%d p99=%d creations=%d lazydups=%d breaks=%d drops=%d reserved=%d",
		m.P50, m.P99, m.Creations, m.LazyDups, m.LazyBreaks, m.LazyDrops, m.SpawnReserved))
	results[len(results)-1].P50Simcyc = m.P50
	results[len(results)-1].P99Simcyc = m.P99
}

// prefork — process-pool churn against the serving workload: the master
// holds a fixed pool of COW-imaged workers, each exiting after a fixed
// request count (max-requests-per-child), so the run's creation rate is
// conns/lifespan regardless of pool size. O(1) creation is what makes the
// organization viable: each generation is one lazy duplication and one
// batched reservation, not an image walk.
func prefork() {
	conns := n(2048, 256)
	table(fmt.Sprintf("E1c-prefork — prefork serving pool, %d connections, worker lifespan 8 requests", conns),
		"  pool                     simcyc/op         wall  shootdn   faults")
	for _, workers := range []int{2, 4, 8} {
		m := workload.Prefork(cfg(), workload.PreforkConfig{
			Conns: conns, Workers: workers, Lifespan: 8, Clients: 4,
		})
		rowPrefork(fmt.Sprintf("prefork, %d workers", workers), m)
	}
	m := workload.Prefork(cfg(), workload.PreforkConfig{
		Conns: conns, Workers: 4, Lifespan: 64, Clients: 4,
	})
	rowPrefork("prefork, lifespan 64", m)
	fmt.Println("  shape: simcyc/op near-flat in pool size, and the longer lifespan amortizes the")
	fmt.Println("  (already O(1)) creation cost further; drops+breaks == lazydups every run")
}

// E2 — VM synchronization.
func e2() {
	pages := n(512, 64)
	table("E2a — demand-fault cost vs share-group size (shared read lock hot path)",
		"  configuration            simcyc/op         wall  shootdn   faults")
	row("solo process", workload.FaultScaling(cfg(), 0, pages), "")
	for _, m := range []int{1, 2, 4, 8} {
		row(fmt.Sprintf("group of %d", m), workload.FaultScaling(cfg(), m, pages/m+1), "")
	}
	iters := n(300, 30)
	table("E2b — region grow vs shrink (shrink pays the machine-wide shootdown)",
		"  operation                simcyc/op         wall  shootdn   faults")
	row("sbrk grow", workload.GrowOnly(cfg(), iters), "")
	row("sbrk shrink (0 spin)", workload.ShrinkShootdown(cfg(), 0, iters), "")
	row("sbrk shrink (3 spin)", workload.ShrinkShootdown(cfg(), 3, iters), "")
	fmt.Println("  paper: VM sync overhead negligible except when detaching or shrinking regions (§7)")
}

// E3 — no penalty for normal processes.
func e3() {
	iters := n(20000, 2000)
	table("E3 — system-call overhead: plain process vs clean group member",
		"  configuration            simcyc/op         wall  shootdn   faults")
	row("getpid, plain", workload.SyscallNull(cfg(), false, iters), "")
	row("getpid, member", workload.SyscallNull(cfg(), true, iters), "")
	oc := n(2000, 200)
	row("open+close, plain", workload.SyscallOpenClose(cfg(), false, false, oc), "")
	row("open+close, member", workload.SyscallOpenClose(cfg(), true, false, oc), "")
	fmt.Println("  paper: normal UNIX processes experience no penalty (§7, design goal 4)")
}

// S2 — per-syscall latency from the gateway's own accounting, plain vs
// member. The getpid rows re-measure E3 from kernel counters rather than
// machine cycle totals: the plain/member gap is the no-penalty claim again,
// this time read off the syscall accounting itself.
func s2() {
	iters := n(4000, 400)
	table("S2 — per-syscall in-kernel latency (gateway accounting, mixed workload)",
		"  syscall                    calls  simcyc/call")
	emit := func(variant string, stats []kernel.SyscallStat) float64 {
		getpid := 0.0
		for _, st := range stats {
			name := fmt.Sprintf("%s, %s", st.Name, variant)
			fmt.Printf("  %-24s %7d %12.0f\n", name, st.Count, st.CyclesPerCall())
			results = append(results, benchResult{
				Experiment:     curExperiment,
				Name:           name,
				SimCyclesPerOp: st.CyclesPerCall(),
				Ops:            st.Count,
			})
			if st.Num == kernel.SysGetpid {
				getpid = st.CyclesPerCall()
			}
		}
		return getpid
	}
	_, plain := workload.SyscallMix(cfg(), false, iters)
	gp := emit("plain", plain)
	_, member := workload.SyscallMix(cfg(), true, iters)
	gm := emit("member", member)
	if gp > 0 {
		fmt.Printf("  E3 re-measured from the accounting: getpid member/plain = %.2f\n", gm/gp)
	}
	fmt.Println("  shape: member rows track plain rows — the gateway's sync check is one flag test")
}

// E8 — attribute synchronization.
func e8() {
	oc := n(1000, 100)
	table("E8 — deferred attribute synchronization (§6.3)",
		"  configuration            simcyc/op         wall  shootdn   faults")
	row("open+close, clean", workload.SyscallOpenClose(cfg(), true, false, oc), "")
	row("open+close, stormed", workload.SyscallOpenClose(cfg(), true, true, oc), "")
	rt := n(300, 30)
	for _, members := range []int{1, 2, 4, 8} {
		m := workload.AttrSync(cfg(), members, rt)
		row(fmt.Sprintf("umask round, %d members", members), m,
			fmt.Sprintf("  syncs/op=%.1f", float64(m.Syncs)/float64(m.Ops)))
	}
	fmt.Println("  paper: one flag test on the fast path; update cost linear in sharing members")
}

// E5 — data-passing bandwidth.
func e5() {
	total := n(1<<20, 1<<17)
	table("E5 — data-passing cost per chunk (producer -> consumer)",
		"  mechanism/chunk          simcyc/op         wall  shootdn   faults")
	for _, chunk := range []int{64, 256, 1024, 4096} {
		for _, mech := range []workload.Mech{
			workload.MechShm, workload.MechPipe, workload.MechMsgq, workload.MechSocket,
		} {
			m := workload.IPCBandwidth(cfg(), mech, chunk, total)
			row(fmt.Sprintf("%s %dB", mech, chunk), m, "")
		}
	}
	fmt.Println("  paper: shared memory is the highest-bandwidth path (§3)")
}

// E6 — synchronization latency.
func e6() {
	rounds := n(3000, 200)
	table("E6 — synchronization round-trip latency",
		"  mechanism                simcyc/op         wall  shootdn   faults")
	for _, mech := range []workload.SyncMech{
		workload.SyncSpin, workload.SyncSemop, workload.SyncPipe,
	} {
		row(string(mech), workload.SyncLatency(cfg(), mech, rounds), "")
	}
	row("signal", workload.SyncLatency(cfg(), workload.SyncSignal, n(500, 50)), "")
	fmt.Println("  paper: busy-waiting approaches memory speed; kernel sync is far slower (§3)")
}

// E7 — self-scheduling pool.
func e7() {
	items := n(400, 60)
	const grain = 2000
	table("E7a — parallel work organization (4 workers, grain 2000)",
		"  organization             simcyc/op         wall  shootdn   faults")
	for _, mode := range []workload.PoolMode{
		workload.PoolSproc, workload.PoolPipeWorkers, workload.PoolForkPerTask,
	} {
		row(string(mode), workload.Pool(cfg(), mode, 4, items, grain), "")
	}
	table("E7b — sproc pool scaling (self-scheduling, 4 CPUs)",
		"  workers                  simcyc/op         wall  shootdn   faults")
	for _, w := range []int{1, 2, 4, 8} {
		row(fmt.Sprintf("%d workers", w), workload.Pool(cfg(), workload.PoolSproc, w, items, grain), "")
	}
	fmt.Println("  paper: preallocated self-scheduling pools make creation speed irrelevant (§3)")
}

// S5 — the blockproc(2) sleep-wake subsystem under overcommit (§3): one
// contended lock, twice as many group members as processors. Pure
// spinning burns whole slices against descheduled holders; the hybrid
// spin-then-block lock gives the processor back; gang mode cannot help
// because a group bigger than the machine can never be co-resident.
func s5() {
	iters := n(200, 40)
	const members, grain = 8, 600
	table("S5 — contended lock under 2x overcommit (8 members, 4 CPUs, blockproc sleep-wake)",
		"  waiting discipline       simcyc/op         wall  shootdn   faults")
	for _, mode := range []workload.LockMode{
		workload.LockSpin, workload.LockHybrid, workload.LockGang,
	} {
		m := workload.Contention(cfg(), mode, members, iters, grain)
		row(string(mode), m, fmt.Sprintf("  blocks=%d wakes=%d banked=%d spin-to-block=%d preempts=%d",
			m.Blocks, m.Wakes, m.BankedWakes, m.SpinToBlocks, m.Preempts))
	}
	fmt.Println("  paper (§3): when the holder is descheduled, spinning wastes the machine;")
	fmt.Println("  blockproc/unblockproc let waiters sleep without losing a single wakeup")
}

// E10 — gang scheduling ablation (§8 future work).
func e10() {
	rounds := n(200, 30)
	table("E10 — gang scheduling (4-member spin-barrier group vs 4 load processes, 4 CPUs)",
		"  dispatcher               simcyc/op         wall  shootdn   faults")
	m := workload.GangBarrier(cfg(), false, 4, 4, rounds, 600)
	row("standard", m, fmt.Sprintf("  member-dispatches/round=%.2f", float64(m.Dispatches)/float64(m.Ops)))
	m = workload.GangBarrier(cfg(), true, 4, 4, rounds, 600)
	row("gang mode", m, fmt.Sprintf("  member-dispatches/round=%.2f", float64(m.Dispatches)/float64(m.Ops)))
	fmt.Println("  paper (§8): schedule the share group as a whole so spinners' partners are running")
}
