// Command vsh is a small scripted shell running INSIDE the simulated
// UNIX: every builtin is executed with real system calls against the
// simulated kernel — files, directories, pipes between forked children,
// exec, and share-group parallelism. It demonstrates that the
// reproduction is a usable operating system, not just a benchmark rig.
//
// Usage: vsh [script-file]. Without an argument it runs a built-in demo
// script. Script lines:
//
//	mkdir PATH          create a directory
//	cd PATH             change directory (persists across lines)
//	write PATH TEXT...  create PATH holding TEXT
//	append PATH TEXT... append TEXT to PATH
//	cat PATH            print a file
//	ls [PATH]           list a directory
//	ln OLD NEW          hard link
//	rm PATH             unlink
//	pipe TEXT...        send TEXT through a pipe to a forked child (upcase)
//	par N PATH          N share-group workers each append a line to PATH
//	exec NAME           overlay the shell with a fresh image (ends the script)
//	umask OCTAL         set the file creation mask
//	# ...               comment
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	irix "repro"
)

const demoScript = `
# vsh demo: a working UNIX, simulated.
mkdir /home
mkdir /home/jmb
cd /home/jmb
umask 027
write paper.txt Enhanced Resource Sharing in UNIX
append paper.txt by J. M. Barton and J. C. Wagner
cat paper.txt
ln paper.txt csrd.txt
ls
pipe share groups went beyond threads
par 4 results.txt
cat results.txt
ls /home/jmb
rm csrd.txt
ls
`

func main() {
	script := demoScript
	if len(os.Args) > 1 {
		b, err := os.ReadFile(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		script = string(b)
	}

	sys := irix.New(irix.Config{NCPU: 4})
	sys.Start("vsh", func(c *irix.Ctx) {
		for ln, line := range strings.Split(script, "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if err := run(c, line); err != nil {
				fmt.Printf("vsh: line %d: %s: %v\n", ln+1, line, err)
			}
		}
	})
	sys.WaitIdle()
}

// buf is scratch space in the shell's data segment for I/O transfers.
const buf = irix.DataBase + 4096

func run(c *irix.Ctx, line string) error {
	args := strings.Fields(line)
	cmd, args := args[0], args[1:]
	switch cmd {
	case "mkdir":
		return c.Mkdir(args[0], 0o755)

	case "cd":
		return c.Chdir(args[0])

	case "umask":
		v, err := strconv.ParseUint(args[0], 8, 16)
		if err != nil {
			return err
		}
		c.Umask(uint16(v))
		return nil

	case "write", "append":
		flags := irix.OWrite | irix.OCreat
		if cmd == "append" {
			flags |= irix.OAppend
		} else {
			flags |= irix.OTrunc
		}
		fd, err := c.Open(args[0], flags, 0o666)
		if err != nil {
			return err
		}
		defer c.Close(fd)
		_, err = c.WriteString(fd, buf, strings.Join(args[1:], " ")+"\n")
		return err

	case "cat":
		fd, err := c.Open(args[0], irix.ORead, 0)
		if err != nil {
			return err
		}
		defer c.Close(fd)
		for {
			s, err := c.ReadString(fd, buf, 512)
			if err != nil {
				return err
			}
			if s == "" {
				return nil
			}
			fmt.Print(s)
		}

	case "ls":
		path := "."
		if len(args) > 0 {
			path = args[0]
		}
		names, err := c.ReadDir(path)
		if err != nil {
			return err
		}
		for _, n := range names {
			st, err := c.Stat(path + "/" + n)
			if err != nil {
				return err
			}
			kind := "-"
			if st.Mode&irix.TypeMask == irix.ModeDir {
				kind = "d"
			}
			fmt.Printf("  %s%03o %6d  %s\n", kind, st.Mode&irix.PermMask, st.Size, n)
		}
		return nil

	case "ln":
		return c.Link(args[0], args[1])

	case "rm":
		return c.Unlink(args[0])

	case "pipe":
		// The V7 pattern: fork a child connected by a pipe; the child
		// upcases what it reads and prints it.
		rfd, wfd, err := c.Pipe()
		if err != nil {
			return err
		}
		c.Fork("upcase", func(k *irix.Ctx) {
			k.Close(wfd)
			for {
				s, err := k.ReadString(rfd, buf, 256)
				if err != nil || s == "" {
					return
				}
				fmt.Printf("| %s\n", strings.ToUpper(s))
			}
		})
		c.Close(rfd)
		if _, err := c.WriteString(wfd, buf, strings.Join(args, " ")); err != nil {
			return err
		}
		c.Close(wfd)
		_, _, err = c.Wait()
		return err

	case "par":
		// Share-group parallelism: N workers share the descriptor table
		// and cwd, each appending to the same open file through the
		// shared offset.
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return err
		}
		fd, err := c.Open(args[1], irix.OWrite|irix.OCreat|irix.OAppend, 0o666)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if _, err := c.Sproc("par-worker", func(w *irix.Ctx, arg int64) {
				line := fmt.Sprintf("worker %d reporting from pid %d\n", arg, w.Getpid())
				w.WriteString(fd, w.StackBase()+256, line)
			}, irix.PRSFDS|irix.PRSDIR, int64(i)); err != nil {
				return err
			}
		}
		for i := 0; i < n; i++ {
			if _, _, err := c.Wait(); err != nil {
				return err
			}
		}
		return c.Close(fd)

	case "exec":
		fmt.Printf("(exec into %q — descriptors survive, group membership does not)\n", args[0])
		c.Exec(args[0], func(*irix.Ctx) {})
		return nil // unreachable

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
