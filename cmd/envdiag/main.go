// Command envdiag reproduces Figures 1-4 of the paper from live systems:
// for each process-environment model — Version 7 (Figure 1), System V and
// BSD (Figure 2), Mach threads (Figure 3), and the IRIX share-group model
// (Figure 4) — it boots the simulated kernel, constructs the model's
// characteristic arrangement, and prints an inventory showing which
// resources are private, which are shared, and through what mechanism the
// parts communicate.
package main

import (
	"fmt"
	"sync/atomic"

	irix "repro"
)

func main() {
	v7()
	sysv()
	bsd()
	mach()
	irixModel()
}

func header(title string) {
	fmt.Printf("\n%s\n", title)
	for range title {
		fmt.Print("─")
	}
	fmt.Println()
}

// v7 — Figure 1: fully private processes, pipes the only data path.
func v7() {
	header("Figure 1 — Version 7 process environment")
	sys := irix.New(irix.Config{NCPU: 2})
	sys.Start("parent", func(c *irix.Ctx) {
		r, w, _ := c.Pipe()
		c.Fork("child", func(cc *irix.Ctx) {
			msg, _ := cc.ReadString(r, irix.DataBase, 64)
			fmt.Printf("  child: private address space (ASID %d); got %q via pipe\n", cc.P.ASID, msg)
			cc.Store32(irix.DataBase, 7) // invisible to the parent
		})
		c.WriteString(w, irix.DataBase+4096, "hello through the kernel queue")
		c.Wait()
		v, _ := c.Load32(irix.DataBase)
		fmt.Printf("  parent: private address space (ASID %d); child's store invisible (read %d)\n", c.P.ASID, v)
		fmt.Println("  sharing: NONE — every resource private; communication queues through the kernel")
	})
	sys.WaitIdle()
}

// sysv — Figure 2 (left): System V adds shared memory, semaphores and
// message queues, but synchronization still crosses the kernel.
func sysv() {
	header("Figure 2a — System V process environment")
	sys := irix.New(irix.Config{NCPU: 2})
	sys.Start("parent", func(c *irix.Ctx) {
		shmID := c.Shmget(42, 4)
		semID := c.Semget(43, 1)
		msqID := c.Msgget(44)
		va, _ := c.Shmat(shmID)
		c.Fork("child", func(cc *irix.Ctx) {
			cva, _ := cc.Shmat(shmID)
			cc.Store32(cva, 123)
			cc.Semop(semID, 0, 1) // kernel-mediated signal
			cc.Msgsnd(msqID, 1, cva, 8)
		})
		c.Semop(semID, 0, -1)
		v, _ := c.Load32(va)
		n, typ, _ := c.Msgrcv(msqID, 0, va+64, 64)
		fmt.Printf("  shm segment: child's store visible across fork (read %d)\n", v)
		fmt.Printf("  semaphore: synchronized via semop (kernel interaction each time)\n")
		fmt.Printf("  message queue: received %d-byte message of type %d\n", n, typ)
		fmt.Println("  sharing: explicit segments only; fds/dirs/ids remain private")
		c.Wait()
	})
	sys.WaitIdle()
}

// bsd — Figure 2 (right): BSD's socket queueing model.
func bsd() {
	header("Figure 2b — BSD process environment")
	sys := irix.New(irix.Config{NCPU: 2})
	sys.Start("server", func(c *irix.Ctx) {
		l, _ := c.NetListen("svc")
		c.Fork("client", func(cc *irix.Ctx) {
			fd, _ := cc.NetConnect("svc")
			cc.WriteString(fd, irix.DataBase, "request")
			resp, _ := cc.ReadString(fd, irix.DataBase+64, 64)
			fmt.Printf("  client: response %q over stream socket\n", resp)
		})
		fd, _ := c.NetAccept(l)
		req, _ := c.ReadString(fd, irix.DataBase, 64)
		c.WriteString(fd, irix.DataBase+64, "response to "+req)
		c.Wait()
		fmt.Println("  sharing: none — all data copied twice through kernel socket buffers")
	})
	sys.WaitIdle()
}

// mach — Figure 3: one task, several threads, everything shared.
func mach() {
	header("Figure 3 — Mach process environment (task + threads)")
	sys := irix.New(irix.Config{NCPU: 2})
	sys.Start("task", func(c *irix.Ctx) {
		task := irix.NewTask(c)
		var sum atomic.Int32
		for i := 0; i < 3; i++ {
			task.ThreadCreate(func(cc *irix.Ctx, arg int64) {
				cc.Add32(irix.DataBase, uint32(arg))
				sum.Add(int32(arg))
			}, int64(i+1))
		}
		task.Join(3)
		v, _ := c.Load32(irix.DataBase)
		fmt.Printf("  3 threads in one task: shared sum = %d (ASID %d for all)\n", v, c.P.ASID)
		fmt.Println("  sharing: EVERYTHING, always — no selectivity; each thread still needs")
		fmt.Println("  a kernel stack and context (cheap create, but two interfaces to manage)")
	})
	sys.WaitIdle()
}

// irixModel — Figure 4: share groups with per-child share masks.
func irixModel() {
	header("Figure 4 — IRIX programming model (share groups)")
	sys := irix.New(irix.Config{NCPU: 4})
	sys.Start("creator", func(c *irix.Ctx) {
		fd, _ := c.Creat("/notes", 0o644)
		var step atomic.Int32
		// Member A: shares everything.
		c.Sproc("A", func(cc *irix.Ctx, _ int64) {
			cc.Store32(irix.DataBase, 11)
			for step.Load() < 1 {
				cc.Getpid()
			}
		}, irix.PRSALL, 0)
		// Member B: shares only descriptors — its memory stays private.
		c.Sproc("B", func(cc *irix.Ctx, _ int64) {
			cc.Store32(irix.DataBase, 22) // lands in B's COW copy
			cc.P.Mu.Lock()
			_, errFd := cc.P.GetFd(fd)
			cc.P.Mu.Unlock()
			fmt.Printf("  member B (mask %s): sees creator's fd: %v; its stores stay private\n",
				cc.P.ShMask(), errFd == nil)
			for step.Load() < 1 {
				cc.Getpid()
			}
		}, irix.PRSFDS, 0)
		for {
			if v, _ := c.Load32(irix.DataBase); v == 11 {
				break
			}
		}
		v, _ := c.Load32(irix.DataBase)
		fmt.Printf("  member A (mask %s): store visible to creator (read %d)\n", irix.PRSALL, v)
		fmt.Println("  sharing: SELECTED PER CHILD by the sproc share mask, with strict")
		fmt.Println("  inheritance; normal UNIX semantics (signals, wait, exec) retained")
		step.Store(1)
		c.Wait()
		c.Wait()
	})
	sys.WaitIdle()
}
