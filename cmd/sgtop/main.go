// Command sgtop reproduces Figure 5 of the paper from live kernel state:
// it boots the simulated system, builds a four-member share group doing
// real work, and dumps the shared address block — member list, shared
// pregion list, shadow resources, and lock statistics.
package main

import (
	"fmt"

	irix "repro"
	"repro/internal/kernel"
)

func main() {
	sys := irix.New(irix.Config{NCPU: 4, NUMANodes: 2})
	sys.Start("creator", func(c *irix.Ctx) {
		// Put the group through its paces: shared fds, a shared mapping,
		// chdir propagation, spinlock traffic.
		c.Mkdir("/srv", 0o755)
		fd, _ := c.Open("/srv/log", irix.ORead|irix.OWrite|irix.OCreat, 0o644)
		shm, _ := c.Mmap(8)
		rp, wp, _ := c.Pipe()

		// The lock owns shm..shm+SyncBytes; data words follow it.
		lock := irix.Spinlock{VA: shm}
		lock.Init(c)
		sum := irix.Word{VA: shm + irix.SyncBytes}
		phase := irix.Word{VA: shm + irix.SyncBytes + 4}
		for i := 0; i < 3; i++ {
			c.Sproc("member", func(cc *irix.Ctx, arg int64) {
				lock.Lock(cc)
				sum.Add(cc, uint32(arg+1))
				lock.Unlock(cc)
				cc.WriteString(fd, cc.StackBase(), fmt.Sprintf("member %d here\n", arg))
				cc.Write(wp, cc.StackBase(), 4) // announce over the shared pipe
				// Hold membership until the dump is done.
				phase.AwaitNe(cc, 0)
			}, irix.PRSALL, int64(i))
		}
		// Give the group a resource entitlement so the dump's resource-
		// control section shows live numbers.
		c.Setshares(irix.Entitlement{CPUShares: 4, FrameQuota: 256, MemberCap: 8})
		c.Chdir("/srv")
		// Collect the member announcements through poll(2) — the readiness
		// counters this exercises appear in the machine dump below.
		c.SetNonblock(rp, true)
		set := []irix.PollFd{{Fd: rp, Events: irix.PollIn}}
		for got := 0; got < 3; {
			if _, err := c.Poll(set, -1); err != nil {
				break
			}
			for {
				if _, err := c.Read(rp, irix.DataBase, 4); err != nil {
					break
				}
				got++
			}
		}
		sum.AwaitEq(c, 1+2+3)

		// A live checkpoint of the group (two pre-copy passes) so the
		// machine dump's checkpoint counters report a real image.
		c.Ckpt(irix.CkptOpts{Passes: 2})

		dump(c)
		phase.Store(c, 1)
		for i := 0; i < 3; i++ {
			c.Wait()
		}
	})
	sys.WaitIdle()
}

// pct formats part/whole as a percentage, dodging the zero divide.
func pct(part, whole int64) string {
	if whole == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}

func dump(c *irix.Ctx) {
	sa := kernel.GroupOf(c.P)
	fmt.Println("shared address block (shaddr_t) ───────────────────────────")
	fmt.Printf("  s_refcnt   %d members\n", sa.Size())
	fmt.Println("  s_plink:")
	for _, m := range sa.Members() {
		fmt.Printf("    pid %-3d %-10q state=%-6s p_shmask=%s p_flag=%#x\n",
			m.PID, m.Name, m.State(), m.ShMask(), m.Flag.Load())
	}
	fmt.Println("  s_region (shared pregion list, under the shared read lock):")
	for _, pr := range sa.RegionList(c.P) {
		fmt.Printf("    %-5s base=%#08x pages=%-4d resident=%-4d refs=%d\n",
			pr.Reg.Type, uint32(pr.Base), pr.Reg.Pages(), pr.Reg.Resident(), pr.Reg.Refs())
	}
	cdir, rdir, umask, ulimit, uid, gid := sa.ShadowEnv()
	fmt.Println("  shadow resources:")
	fmt.Printf("    s_cdir=inode#%d(ref %d)  s_rdir=inode#%d  s_cmask=%04o  s_limit=%d  s_uid=%d  s_gid=%d\n",
		cdir.Ino, cdir.Ref(), rdir.Ino, umask, ulimit, uid, gid)
	nfds := 0
	c.P.Mu.Lock()
	for _, f := range c.P.Fd {
		if f != nil {
			nfds++
		}
	}
	c.P.Mu.Unlock()
	fmt.Printf("    s_ofile: %d shared descriptors\n", nfds)
	if u, err := c.Getusage(); err == nil {
		fmt.Println("  resource control (setshares(2) entitlements / getusage(2) delivery):")
		fmt.Printf("    cpu: shares=%d band=%d delivered=%d simcyc decayed-usage=%.0f\n",
			u.CPUShares, u.Band, u.Delivered, u.DecayedUsage)
		quota := "unlimited"
		if u.FrameQuota > 0 {
			quota = fmt.Sprintf("%d", u.FrameQuota)
		}
		cap := "unlimited"
		if u.MemberCap > 0 {
			cap = fmt.Sprintf("%d", u.MemberCap)
		}
		fmt.Printf("    mem: frames=%d/%s quota-hits=%d reclaims=%d rezeroed=%d\n",
			u.FramesUsed, quota, u.QuotaHits, u.QuotaReclaims, u.ReclaimedZeros)
		fmt.Printf("    members=%d/%s\n", u.Members, cap)
	}
	fmt.Println("  lock and synchronization statistics:")
	fmt.Printf("    shared read lock: %d scans (%d slept), %d updates (%d slept), %d waiting\n",
		sa.Acc.RLocks.Load(), sa.Acc.RSleeps.Load(), sa.Acc.WLocks.Load(), sa.Acc.WSleeps.Load(), sa.Acc.WaitCount())
	fmt.Printf("    propagations=%d  entry syncs=%d  shootdowns=%d\n",
		sa.Propagations.Load(), sa.Syncs.Load(), sa.Shootdowns.Load())
	fmt.Println("  group syscall profile (gateway accounting, summed over members):")
	group := map[kernel.Sysno]int64{}
	for _, m := range sa.Members() {
		for _, st := range kernel.ProcSyscalls(m) {
			group[st.Num] += st.Count
		}
	}
	for n := kernel.Sysno(0); n < kernel.NSys; n++ {
		if count := group[n]; count > 0 {
			fmt.Printf("    %-12s %-5s %6d calls\n", kernel.SysName(n), kernel.SysClass(n), count)
		}
	}

	fmt.Println("machine ────────────────────────────────────────────────────")
	m := c.S.Machine
	fmt.Printf("  %v, %d frames in use\n", m, m.Mem.InUse())
	for _, cpu := range m.CPUs {
		fmt.Printf("  cpu%d: %10d cycles, tlb hits=%d misses=%d flushes=%d shootdowns=%d\n",
			cpu.ID, cpu.Cycles.Load(), cpu.TLB.Hits.Load(), cpu.TLB.Misses.Load(),
			cpu.TLB.Flushes.Load(), cpu.TLB.Shootdowns.Load())
	}
	st := c.S.Stats()
	fmt.Println("  dispatcher (per-CPU run queues):")
	fmt.Printf("    dispatches=%d local=%d steals=%d steal-scans=%d preemptions=%d sticky-holds=%d runq=%d idle=%d\n",
		st.Dispatches, st.LocalPicks, st.Steals, st.StealScans,
		st.Preemptions, st.StickyHolds, st.RunqLen, st.IdleCPUs)
	fmt.Printf("    fair-share: on=%v passes=%d flushed=%d ungrouped=%d\n",
		st.FairShareOn, st.FairPasses, st.FlushedCyc, st.UngroupedCyc)
	for i, g := range st.Groups {
		fmt.Printf("    group%d: shares=%d band=%d delivered=%d frames=%d members=%d\n",
			i, g.CPUShares, g.Band, g.Delivered, g.FramesUsed, g.Members)
	}
	fmt.Println("  frame allocator (per-CPU caches over the global pool):")
	fmt.Printf("    allocs=%d frees=%d cow-copies=%d cache-hits=%d refills=%d drains=%d scavenges=%d pool-allocs=%d cached=%d\n",
		st.FrameAllocs, st.FrameFrees, st.FrameCopies, st.CacheHits,
		st.CacheRefills, st.CacheDrains, st.CacheScavenges, st.PoolAllocs, st.FramesCached)
	if st.NUMANodes > 1 {
		fmt.Printf("  numa locality (%d nodes):\n", st.NUMANodes)
		for _, np := range st.NodePools {
			used := np.Capacity - np.Free - np.Fresh
			fmt.Printf("    node%d: %5d/%5d frames in use, %5d pooled, %5d fresh\n",
				np.Node, used, np.Capacity, np.Free, np.Fresh)
		}
		fmt.Printf("    alloc locality: local-takes=%d remote-takes=%d (%s local)\n",
			st.LocalTakes, st.RemoteTakes, pct(st.LocalTakes, st.LocalTakes+st.RemoteTakes))
		fmt.Printf("    steal locality: local=%d remote=%d (%s local)\n",
			st.LocalSteals, st.RemoteSteals, pct(st.LocalSteals, st.LocalSteals+st.RemoteSteals))
		fmt.Printf("    remote-fills=%d remote-ipis=%d\n", st.RemoteFills, st.RemoteIPIs)
	}
	fmt.Println("  fault fast path (lock-free fills, pregion caches, batched shootdowns):")
	fmt.Printf("    fast-fills=%d slow-fills=%d vmcache-hits=%d vmcache-misses=%d page-shootdowns=%d space-shootdowns=%d\n",
		st.FastFills, st.SlowFills, st.VMCacheHits, st.VMCacheMisses,
		st.PageShootdowns, st.SpaceShootdowns)
	fmt.Println("  lazy creation (O(1) COW clones, batched spawn reservation):")
	fmt.Printf("    lazy-dups=%d lazy-breaks=%d lazy-drops=%d break-pages=%d spawn-reserved=%d\n",
		st.LazyDups, st.LazyBreaks, st.LazyDrops, st.LazyBreakPages, st.SpawnReserved)
	fmt.Println("  sleep-wake (blockproc/unblockproc, hybrid uspin):")
	fmt.Printf("    blocks=%d wakes=%d banked-wakes=%d spin-to-blocks=%d\n",
		st.ProcBlocks, st.ProcWakes, st.BankedWakes, st.SpinToBlocks)
	fmt.Println("  readiness (poll(2) over the stream event queues):")
	fmt.Printf("    poll-sleeps=%d transitions=%d sleeper-wakes=%d poller-wakes=%d\n",
		st.PollSleeps, st.ReadyTransitions, st.ReadySleeperWakes, st.ReadyPollerWakes)
	if st.Ckpts > 0 || st.Restores > 0 {
		fmt.Println("  checkpoint/restore (iterative pre-copy over the share group):")
		fmt.Printf("    ckpts=%d passes=%d pre-pages=%d stw-pages=%d stw-simcyc=%d image-bytes=%d restores=%d\n",
			st.Ckpts, st.CkptPasses, st.CkptPrePages, st.CkptSTWPages,
			st.CkptSTWCycles, st.CkptImageBytes, st.Restores)
	}
	if st.ResvReserved > 0 {
		fmt.Println("  spawn reservation ledger (reserved+refunds must equal consumed+released):")
		fmt.Printf("    reserved=%d consumed=%d refunds=%d released=%d\n",
			st.ResvReserved, st.ResvConsumed, st.ResvRefunds, st.ResvReleased)
	}
	fmt.Println("  fault injection and degradation:")
	fmt.Printf("    checks=%d injected=%d restarts=%d retries=%d reclaims=%d reclaimed-frames=%d\n",
		st.FaultChecks, st.FaultsInjected, st.SyscallRestarts,
		st.SyscallRetries, st.FrameReclaims, st.ReclaimedFrames)
	for _, row := range st.FaultSites {
		if row.Checks > 0 {
			fmt.Printf("    site %-10s checks=%-6d injected=%d\n", row.Site, row.Checks, row.Injected)
		}
	}
	fmt.Println("  system-wide syscall accounting (per-CPU gateway counters):")
	for _, sc := range st.Syscalls {
		fmt.Printf("    %-12s %-5s %6d calls %10d simcyc %8.0f /call\n",
			sc.Name, kernel.SysClass(sc.Num), sc.Count, sc.SimCyc, sc.CyclesPerCall())
	}
}
