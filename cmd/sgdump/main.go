// Command sgdump renders a share-group checkpoint image — the on-disk
// counterpart of sgtop's live dump. With a file argument it decodes and
// prints an image previously saved with -o; without one it boots the
// simulated system, runs a small share group, checkpoints it live (two
// pre-copy passes), and dumps the resulting image, so the tool also serves
// as a worked example of the ckpt(2)/restore(2) flow.
//
//	sgdump                  # demo: checkpoint an in-process group and dump it
//	sgdump -o group.ckpt    # demo, and save the encoded image
//	sgdump group.ckpt       # decode and dump a saved image
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"

	irix "repro"
	"repro/internal/ckpt"
)

func main() {
	out := flag.String("o", "", "write the encoded image to this file")
	flag.Parse()

	var img *ckpt.Image
	switch flag.NArg() {
	case 0:
		img = demoImage()
	case 1:
		raw, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sgdump:", err)
			os.Exit(1)
		}
		img, err = ckpt.Decode(raw)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sgdump:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: sgdump [-o file] [image-file]")
		os.Exit(2)
	}
	if err := img.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "sgdump: invalid image:", err)
		os.Exit(1)
	}
	if *out != "" {
		if err := os.WriteFile(*out, img.Encode(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sgdump:", err)
			os.Exit(1)
		}
	}
	dump(img)
}

// demoImage builds a four-member share group doing real work — shared
// mapping, shared descriptor, per-member stamps — and checkpoints it at a
// quiesced point.
func demoImage() *ckpt.Image {
	sys := irix.New(irix.Config{NCPU: 4})
	var img *irix.CkptImage
	sys.Start("creator", func(c *irix.Ctx) {
		c.Mkdir("/srv", 0o755)
		fd, _ := c.Open("/srv/state", irix.ORead|irix.OWrite|irix.OCreat, 0o644)
		c.WriteString(fd, c.StackBase(), "checkpoint me\n")
		shm, _ := c.Mmap(4)
		done := irix.Word{VA: shm + 12*4}
		var pids []int
		for i := 0; i < 3; i++ {
			pid, _ := c.Sproc("member", func(cc *irix.Ctx, arg int64) {
				cc.Store32(shm+irix.VAddr(arg*4), 0xC0DE0000|uint32(arg))
				done.Add(cc, 1)
				cc.Blockproc(0) // park at the quiesce point
			}, irix.PRSALL, int64(i))
			pids = append(pids, pid)
		}
		c.Setshares(irix.Entitlement{CPUShares: 4, FrameQuota: 512, MemberCap: 8})
		done.AwaitEq(c, 3)
		var err error
		img, _, err = c.Ckpt(irix.CkptOpts{Passes: 2})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sgdump: ckpt:", err)
		}
		for _, pid := range pids {
			c.Unblockproc(pid)
		}
		for i := 0; i < 3; i++ {
			c.Wait()
		}
	})
	sys.WaitIdle()
	if img == nil {
		os.Exit(1)
	}
	return img
}

func dump(img *ckpt.Image) {
	enc := img.Encode()
	fmt.Printf("checkpoint image: version=%d page-size=%d encoded=%d bytes\n",
		img.Version, img.PageSize, len(enc))
	a := img.Attr
	fmt.Println("  group attributes:")
	fmt.Printf("    umask=%04o ulimit=%d uid=%d gid=%d cpu-shares=%d frame-quota=%d member-cap=%d gang=%v\n",
		a.Umask, a.Ulimit, a.Uid, a.Gid, a.CPUShares, a.FrameQuota, a.MemberCap, a.Gang)
	fmt.Printf("  regions (%d, %d resident pages):\n", len(img.Regions), img.ResidentPages())
	for _, r := range img.Regions {
		fmt.Printf("    %-5s base=%#08x pages=%-4d resident=%-4d", typeName(r.Type), r.Base, r.Pages, len(r.Resid))
		if len(r.Resid) > 0 {
			fmt.Printf(" idx=%s fnv=%08x", idxSpan(r.Resid), pageHash(r.Resid))
		}
		fmt.Println()
	}
	fmt.Printf("  members (%d, creation order; [0] is the creator):\n", len(img.Members))
	for i, m := range img.Members {
		prda := "-"
		if m.PRDA != nil {
			prda = fmt.Sprintf("fnv=%08x", bytesHash(m.PRDA))
		}
		fmt.Printf("    [%d] pid=%-3d %-10q mask=%#x prio=%d arg=%d stack=%#08x+%dp prda=%s\n",
			i, m.PID, m.Name, m.Mask, m.Prio, m.Arg, m.StackBase, m.StackPages, prda)
		for _, f := range m.Fds {
			switch {
			case f.Stream:
				fmt.Printf("        fd %-2d <stream endpoint: recorded, not reopened>\n", f.Fd)
			default:
				fmt.Printf("        fd %-2d %-14q flags=%#x fdflags=%#x offset=%d\n",
					f.Fd, f.Path, f.Flags, f.FdFlags, f.Offset)
			}
		}
	}
}

// typeName names a ckpt region type (the package mirrors vm's numbering
// but keeps its own constants).
func typeName(t uint8) string {
	switch t {
	case ckpt.RText:
		return "text"
	case ckpt.RData:
		return "data"
	case ckpt.RStack:
		return "stack"
	case ckpt.RShm:
		return "shm"
	case ckpt.RPRDA:
		return "prda"
	}
	return fmt.Sprintf("t%d", t)
}

// idxSpan compacts a resident index list: "0-2,7".
func idxSpan(pages []ckpt.PageImage) string {
	s, runStart, prev := "", pages[0].Index, pages[0].Index
	flush := func() {
		if s != "" {
			s += ","
		}
		if runStart == prev {
			s += fmt.Sprintf("%d", runStart)
		} else {
			s += fmt.Sprintf("%d-%d", runStart, prev)
		}
	}
	for _, p := range pages[1:] {
		if p.Index != prev+1 {
			flush()
			runStart = p.Index
		}
		prev = p.Index
	}
	flush()
	return s
}

// pageHash digests a region's resident contents (index + data), so two
// dumps can be compared at a glance without printing pages.
func pageHash(pages []ckpt.PageImage) uint32 {
	h := fnv.New32a()
	for _, p := range pages {
		fmt.Fprintf(h, "%d:", p.Index)
		h.Write(p.Data)
	}
	return h.Sum32()
}

func bytesHash(b []byte) uint32 {
	h := fnv.New32a()
	h.Write(b)
	return h.Sum32()
}
